package telemetry

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"dsasim/internal/sim"
)

// exactQuantile is the reference nearest-rank quantile.
func exactQuantile(vals []int64, q float64) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q*float64(len(s)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// TestSketchQuantileAccuracy records latency-like traces into a sketch and
// checks p50/p95/p99 against the exact nearest-rank values. The log-bucket
// layout bounds relative error at half a sub-bucket (2^-3/2 ≈ 6%); allow
// 8% for rank rounding at the tails.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	traces := map[string][]int64{}

	// Exponential inter-arrival-style trace around 2µs.
	exp := make([]int64, 5000)
	for i := range exp {
		exp[i] = int64(rng.ExpFloat64() * 2000)
	}
	traces["exponential"] = exp

	// Bimodal latency trace: fast path ~1.2µs, slow tail ~40µs.
	bi := make([]int64, 5000)
	for i := range bi {
		if rng.Float64() < 0.9 {
			bi[i] = 1000 + int64(rng.Intn(400))
		} else {
			bi[i] = 30000 + int64(rng.Intn(20000))
		}
	}
	traces["bimodal"] = bi

	// Uniform small values exercising the exact low buckets.
	uni := make([]int64, 2000)
	for i := range uni {
		uni[i] = int64(rng.Intn(64))
	}
	traces["uniform-small"] = uni

	for name, trace := range traces {
		var sk Sketch
		for _, v := range trace {
			sk.Add(v)
		}
		if sk.Count() != int64(len(trace)) {
			t.Fatalf("%s: count = %d, want %d", name, sk.Count(), len(trace))
		}
		for _, q := range []float64{0.50, 0.95, 0.99} {
			got := sk.Quantile(q)
			want := exactQuantile(trace, q)
			tol := float64(want) * 0.08
			if tol < 1 {
				tol = 1
			}
			if diff := float64(got - want); diff > tol || diff < -tol {
				t.Errorf("%s: p%.0f = %d, exact %d (tolerance %.0f)", name, q*100, got, want, tol)
			}
		}
	}
}

// TestSketchMergeOrderInvariant splits one trace across shard layouts and
// checks the merged sketch is identical regardless of how samples were
// sharded or in which order the shards merged.
func TestSketchMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trace := make([]int64, 4096)
	for i := range trace {
		trace[i] = int64(rng.ExpFloat64() * 5000)
	}

	var whole Sketch
	for _, v := range trace {
		whole.Add(v)
	}

	for _, nShards := range []int{2, 3, 7} {
		shards := make([]Sketch, nShards)
		for i, v := range trace {
			shards[i%nShards].Add(v)
		}
		// Merge in reverse registration order to stress order-invariance.
		var merged Sketch
		for i := nShards - 1; i >= 0; i-- {
			merged.Merge(&shards[i])
		}
		if merged != whole {
			t.Fatalf("%d shards: merged sketch differs from whole-trace sketch", nShards)
		}
	}
}

// TestHubShardMergeDeterminism records the same event history through
// different shard layouts and checks every digest view agrees — the
// determinism the commutative bucket merge buys.
func TestHubShardMergeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type ev struct {
		at sim.Time
		v  int64
	}
	events := make([]ev, 3000)
	at := sim.Time(0)
	for i := range events {
		at += sim.Time(rng.Intn(200)) * time.Nanosecond
		events[i] = ev{at: at, v: int64(rng.ExpFloat64() * 3000)}
	}
	end := at + time.Microsecond

	run := func(nShards int) (int64, float64, int64, int64, float64) {
		h := NewHub(0)
		id := h.Stream("lat")
		shards := make([]*Shard, nShards)
		for i := range shards {
			shards[i] = h.NewShard()
		}
		for i, e := range events {
			shards[i%nShards].Record(id, e.at, e.v)
		}
		h.Sync(end)
		d := h.Digest(id)
		return d.Count(), d.Mean(), d.Quantile(end, 0.50), d.Quantile(end, 0.99), d.Rate(end)
	}

	c1, m1, p50a, p99a, r1 := run(1)
	if c1 != int64(len(events)) {
		t.Fatalf("count = %d, want %d", c1, len(events))
	}
	for _, n := range []int{2, 5} {
		c, m, p50, p99, r := run(n)
		if c != c1 || m != m1 || p50 != p50a || p99 != p99a || r != r1 {
			t.Errorf("%d shards: views diverge from 1 shard: count %d/%d mean %g/%g p50 %d/%d p99 %d/%d rate %g/%g",
				n, c, c1, m, m1, p50, p50a, p99, p99a, r, r1)
		}
	}
}

// TestShardAggregationDeterminism is the sharded-submission-plane guarantee:
// N shards recording one interleaved event history merge into exactly the
// views a single shard recording the same history sequentially produces —
// including the order-sensitive EWMA, which the timestamp-ordered k-way
// merge makes shard-count-invariant (timestamps are strictly increasing, so
// merge order equals recording order whatever shard each sample landed on).
// Syncs happen mid-history, at different points per layout, to prove the
// merged state does not depend on when aggregation ran either.
func TestShardAggregationDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type ev struct {
		at sim.Time
		v  int64
	}
	events := make([]ev, 3000)
	at := sim.Time(0)
	for i := range events {
		at += sim.Time(1+rng.Intn(200)) * time.Nanosecond
		events[i] = ev{at: at, v: int64(rng.ExpFloat64() * 3000)}
	}
	end := at + time.Microsecond

	type views struct {
		count    int64
		mean     float64
		ewma     float64
		p50, p99 int64
		rate     float64
	}
	run := func(nShards, syncEvery int) views {
		h := NewHub(0)
		id := h.Stream("lat")
		shards := make([]*Shard, nShards)
		for i := range shards {
			shards[i] = h.NewShard()
		}
		for i, e := range events {
			shards[i%nShards].Record(id, e.at, e.v)
			if (i+1)%syncEvery == 0 {
				h.Sync(e.at)
			}
		}
		h.Sync(end)
		d := h.Digest(id)
		return views{d.Count(), d.Mean(), d.EWMA(), d.Quantile(end, 0.50), d.Quantile(end, 0.99), d.Rate(end)}
	}

	want := run(1, 40)
	if want.count != int64(len(events)) {
		t.Fatalf("count = %d, want %d", want.count, len(events))
	}
	for _, tc := range []struct{ shards, syncEvery int }{{2, 40}, {5, 40}, {5, 17}, {8, 61}} {
		if got := run(tc.shards, tc.syncEvery); got != want {
			t.Errorf("%d shards (sync every %d): views diverge from sequential: got %+v want %+v",
				tc.shards, tc.syncEvery, got, want)
		}
	}
}

// TestHubSyncCadence checks the rate-limited merge: Syncs within the
// cadence of the last merge leave the views untouched, the first Sync at
// or past the cadence drains the shards.
func TestHubSyncCadence(t *testing.T) {
	h := NewHub(0)
	id := h.Stream("lat")
	s := h.NewShard()
	h.SetSyncCadence(2 * time.Microsecond)

	s.Record(id, 100, 1000)
	h.Sync(sim.Time(time.Microsecond)) // first sync always merges
	if c := h.Digest(id).Count(); c != 1 {
		t.Fatalf("first Sync merged %d samples, want 1", c)
	}

	s.Record(id, sim.Time(time.Microsecond)+100, 2000)
	h.Sync(sim.Time(2 * time.Microsecond)) // within cadence: no merge
	if c := h.Digest(id).Count(); c != 1 {
		t.Fatalf("within-cadence Sync merged early: count %d, want 1", c)
	}

	h.Sync(sim.Time(3 * time.Microsecond)) // past cadence: merges
	if c := h.Digest(id).Count(); c != 2 {
		t.Fatalf("past-cadence Sync did not merge: count %d, want 2", c)
	}

	h.SetSyncCadence(0)
	s.Record(id, sim.Time(3*time.Microsecond)+100, 3000)
	h.Sync(sim.Time(3*time.Microsecond) + 200) // cadence off: every Sync merges
	if c := h.Digest(id).Count(); c != 3 {
		t.Fatalf("cadence-off Sync did not merge: count %d, want 3", c)
	}
}

// TestDigestWindowRotationAndRate checks that quantile views age out old
// windows and that Rate reflects the live ring, not all-time history.
func TestDigestWindowRotationAndRate(t *testing.T) {
	d := NewDigest(10 * time.Microsecond)

	// Phase 1: slow, large values for 5 windows.
	at := sim.Time(0)
	for i := 0; i < 50; i++ {
		d.Record(at, 40000)
		at += time.Microsecond
	}
	if p99 := d.Quantile(at, 0.99); p99 < 30000 {
		t.Fatalf("phase-1 p99 = %d, want ≈40000", p99)
	}

	// Phase 2: fast, small values long enough to rotate phase 1 out of
	// the 8-window ring entirely.
	for i := 0; i < 1000; i++ {
		d.Record(at, 1000)
		at += 100 * time.Nanosecond
	}
	if p99 := d.Quantile(at, 0.99); p99 > 2000 {
		t.Errorf("after rotation p99 = %d, want ≈1000 (old windows must age out)", p99)
	}
	if rate := d.Rate(at); rate < 5e6 {
		t.Errorf("rate = %g/s, want ≈1e7 (live ring, not all-time)", rate)
	}
	if d.Count() != 1050 {
		t.Errorf("all-time count = %d, want 1050", d.Count())
	}

	// A long idle gap fast-forwards and empties the ring.
	at += sim.Time(100) * 10 * time.Microsecond
	if rm := d.RecentMean(at); rm != 0 {
		t.Errorf("recent mean after idle gap = %g, want 0", rm)
	}
}

// TestDigestDriftDetection drives a sustained rate/p99 regime shift and
// checks exactly the shifts are flagged: none within a stable regime, one
// per sustained change, and single-window spikes absorbed.
func TestDigestDriftDetection(t *testing.T) {
	w := 10 * time.Microsecond
	d := NewDigest(w)

	record := func(at *sim.Time, n int, gap sim.Time, v int64) {
		for i := 0; i < n; i++ {
			d.Record(*at, v)
			*at += gap
		}
	}

	at := sim.Time(0)
	// Stable regime: ~20 events/window at 2µs values, 30 windows.
	record(&at, 600, 500*time.Nanosecond, 2000)
	if d.Drifts() != 0 {
		t.Fatalf("stable regime flagged %d drifts, want 0", d.Drifts())
	}

	// Regime shift: 4× the rate, 8× the value, sustained.
	record(&at, 2400, 125*time.Nanosecond, 16000)
	if d.Drifts() != 1 {
		t.Fatalf("sustained shift flagged %d drifts, want 1", d.Drifts())
	}
	if d.LastDriftAt() == 0 {
		t.Fatalf("LastDriftAt not set")
	}

	// Continuing in the new regime must not re-flag.
	record(&at, 2400, 125*time.Nanosecond, 16000)
	if d.Drifts() != 1 {
		t.Errorf("steady new regime flagged %d drifts, want still 1", d.Drifts())
	}

	// Shift back down — second drift.
	record(&at, 600, 500*time.Nanosecond, 2000)
	if d.Drifts() != 2 {
		t.Errorf("return shift flagged %d drifts, want 2", d.Drifts())
	}
}

// TestDigestSpikeAbsorbed checks a single anomalous window does not flag.
func TestDigestSpikeAbsorbed(t *testing.T) {
	w := 10 * time.Microsecond
	d := NewDigest(w)
	at := sim.Time(0)
	// Stable baseline.
	for i := 0; i < 400; i++ {
		d.Record(at, 2000)
		at += 500 * time.Nanosecond
	}
	// One spiky window (one window's worth at 8× rate), then back to stable.
	for i := 0; i < 80; i++ {
		d.Record(at, 2000)
		at += 125 * time.Nanosecond
	}
	for i := 0; i < 400; i++ {
		d.Record(at, 2000)
		at += 500 * time.Nanosecond
	}
	if d.Drifts() != 0 {
		t.Errorf("single-window spike flagged %d drifts, want 0 (sustain=%d)", d.Drifts(), driftSustain)
	}
}

// TestTelemetryZeroAlloc asserts the hot paths — shard Record, hub Sync,
// and every digest read view — never allocate.
func TestTelemetryZeroAlloc(t *testing.T) {
	h := NewHub(0)
	id := h.Stream("lat")
	s := h.NewShard()
	at := sim.Time(0)

	if n := testing.AllocsPerRun(1000, func() {
		at += 100 * time.Nanosecond
		s.Record(id, at, 1500)
	}); n != 0 {
		t.Errorf("Shard.Record allocates %.1f/op, want 0", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		at += time.Microsecond
		s.Record(id, at, 1500)
		h.Sync(at)
	}); n != 0 {
		t.Errorf("Hub.Sync allocates %.1f/op, want 0", n)
	}

	d := h.Digest(id)
	if n := testing.AllocsPerRun(200, func() {
		at += time.Microsecond
		_ = d.EWMA()
		_ = d.Mean()
		_ = d.Rate(at)
		_ = d.RecentMean(at)
		_ = d.Quantile(at, 0.50)
		_ = d.Quantile(at, 0.99)
		_ = d.Drifts()
	}); n != 0 {
		t.Errorf("digest read views allocate %.1f/op, want 0", n)
	}
}

// TestSketchMax pins the exact-maximum tracking: Max returns the largest
// value ever added — exactly, not the log-bucket midpoint Quantile would
// round it to — and survives Merge and Reset.
func TestSketchMax(t *testing.T) {
	var sk Sketch
	if sk.Max() != 0 {
		t.Fatalf("empty sketch Max = %d, want 0", sk.Max())
	}
	for _, v := range []int64{100, 99_999, 7} {
		sk.Add(v)
	}
	if sk.Max() != 99_999 {
		t.Fatalf("Max = %d, want exact 99999", sk.Max())
	}

	var other Sketch
	other.Add(1_234_567)
	sk.Merge(&other)
	if sk.Max() != 1_234_567 {
		t.Fatalf("merged Max = %d, want 1234567", sk.Max())
	}
	// Merging a smaller-max sketch must not lower it.
	var small Sketch
	small.Add(3)
	sk.Merge(&small)
	if sk.Max() != 1_234_567 {
		t.Fatalf("Max lowered by smaller merge: %d", sk.Max())
	}

	sk.Reset()
	if sk.Max() != 0 || sk.Count() != 0 {
		t.Fatalf("Reset left max=%d count=%d", sk.Max(), sk.Count())
	}
}
