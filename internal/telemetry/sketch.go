// Package telemetry is the simulator's streaming-metrics subsystem: fixed-
// size quantile sketches folded into ring-buffered windowed digests, fed
// from shard-local recorders and merged off the hot path. It replaces the
// bespoke per-policy EWMAs that grew alongside each adaptive mechanism
// (the G2 offload threshold, load-aware placement's queueing-delay model,
// interrupt-coalescing windows) with one signal plane: sources record raw
// events (occupancies, latencies, inter-arrival gaps), digests maintain
// count/rate, mean, EWMA, and p50/p95/p99 views over tumbling virtual-time
// windows, and every policy reads the same views.
//
// The design follows the shard-local/periodic-merge shape BriskStream uses
// for per-core statistics on shared-memory multicores: the recording path
// is a couple of array writes into a shard-local buffer (no locks, no
// allocations), and merging into the global digests happens in batches —
// when a shard buffer fills, or when a policy pulls a view through
// Hub.Sync. In a discrete-event simulator the pull happens at policy-read
// time rather than on a wall-clock timer (a perpetual timer event would
// keep the engine's event loop alive forever); the observable effect in
// virtual time is the same.
package telemetry

import "math/bits"

// Sketch layout: values are bucketed by a base-2 logarithm with subBits
// bits of linear sub-bucket resolution per octave, the fixed-size
// log-histogram shape DDSketch/HDR-style streaming quantile estimators
// use. Relative quantile error is bounded by half a sub-bucket:
// 2^-subBits/2 ≈ 6%. Counts merge by addition, so shard merges are
// order-invariant and deterministic.
const (
	subBits    = 3
	subBuckets = 1 << subBits

	// nBuckets covers values up to ~2^40 ns (≈18 virtual minutes) —
	// far beyond any latency or gap a simulated run produces; larger
	// values clamp into the top bucket.
	nBuckets = (40-subBits)*subBuckets + subBuckets
)

// Sketch is a fixed-size log-bucketed histogram over non-negative int64
// values (nanosecond latencies, per-mille occupancies, byte counts).
// The zero value is ready to use; Add and Quantile never allocate.
type Sketch struct {
	buckets [nBuckets]uint32
	count   int64
	max     int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	idx := (exp-subBits)*subBuckets + int(v>>(uint(exp-subBits)))
	if idx >= nBuckets {
		return nBuckets - 1
	}
	return idx
}

// valueOf returns the midpoint of a bucket (its exact value below
// subBuckets, where buckets are single integers).
func valueOf(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	block := (idx - subBuckets) / subBuckets
	mant := subBuckets + (idx-subBuckets)%subBuckets
	lower := int64(mant) << uint(block)
	return lower + (int64(1)<<uint(block))/2
}

// Add records one value.
func (s *Sketch) Add(v int64) {
	s.buckets[bucketOf(v)]++
	s.count++
	if v > s.max {
		s.max = v
	}
}

// Count returns the number of recorded values.
func (s *Sketch) Count() int64 { return s.count }

// Max returns the largest value recorded, exactly (quantiles are bucket
// midpoints, but the worst observation — the number an SLO report quotes
// as "max latency" — must not be rounded). Zero when empty.
func (s *Sketch) Max() int64 { return s.max }

// Merge adds every count of other into s. Addition is commutative, so the
// merged sketch is independent of shard order — the property the shard-
// merge determinism tests assert.
func (s *Sketch) Merge(other *Sketch) {
	for i, c := range other.buckets {
		s.buckets[i] += c
	}
	s.count += other.count
	if other.max > s.max {
		s.max = other.max
	}
}

// Reset clears the sketch for window reuse without releasing its storage.
func (s *Sketch) Reset() {
	s.buckets = [nBuckets]uint32{}
	s.count = 0
	s.max = 0
}

// Quantile returns the nearest-rank q-quantile (q in [0,1]) as the
// matched bucket's midpoint, or 0 when the sketch is empty.
func (s *Sketch) Quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	target := int64(q*float64(s.count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.count {
		target = s.count
	}
	var seen int64
	for i, c := range s.buckets {
		seen += int64(c)
		if seen >= target {
			return valueOf(i)
		}
	}
	return valueOf(nBuckets - 1)
}
