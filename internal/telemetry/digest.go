package telemetry

import (
	"time"

	"dsasim/internal/sim"
)

// Windowing and drift shape.
const (
	// ringWindows is the tumbling-window ring depth: quantile and rate
	// views aggregate the current window plus the last ringWindows-1
	// closed ones, so a read sees roughly ringWindows × window of recent
	// history and older samples age out instead of freezing the view at
	// a past burst.
	ringWindows = 8

	// DefaultWindow is the tumbling-window span digests rotate on. 50µs
	// is a few hundred completions of a saturated device — enough per
	// window for stable percentiles, short enough that the drift detector
	// reacts within a few hundred microseconds of a regime shift.
	DefaultWindow = 50 * time.Microsecond

	// ewmaAlpha matches the 1/8-per-sample smoothing the WQ occupancy and
	// latency histories used before they moved here, so the adaptive
	// threshold and placement cost model see the same signal dynamics.
	ewmaAlpha = 0.125

	// Drift detection: a closed window whose event rate (or p99) deviates
	// from the smoothed baseline by more than driftFactor in either
	// direction counts as shifted; driftSustain consecutive shifted
	// windows flag one regime shift (single-window spikes are absorbed).
	// Windows are compared only when the larger side carries at least
	// driftMinCount events — near-empty windows make noisy baselines.
	driftFactor   = 2.0
	driftSustain  = 2
	driftMinCount = 8

	// baselineAlpha smooths the per-window rate/p99 baselines the drift
	// detector compares against. Shifted windows are NOT folded in: a
	// genuine regime change keeps deviating from the old baseline until
	// it is flagged, at which point the baseline snaps to the new regime.
	baselineAlpha = 0.25
)

// windowAgg is one tumbling window's accumulation.
type windowAgg struct {
	count int64
	sum   int64
	sk    Sketch
}

func (w *windowAgg) reset() {
	w.count, w.sum = 0, 0
	w.sk.Reset()
}

// Digest is one stream's windowed statistics: all-time count/sum/EWMA plus
// a ring of tumbling-window sketches for rate and quantile views, with a
// window-over-window drift detector. Record and every read path are
// allocation-free; windows rotate in virtual time as samples arrive.
type Digest struct {
	window sim.Time
	start  sim.Time // current window's start instant
	opened bool
	cur    int
	filled int // closed windows currently live in the ring
	ring   [ringWindows]windowAgg

	count   int64
	sum     int64
	ewma    float64
	ewmaSet bool
	firstAt sim.Time

	// Drift state (see closeWindow).
	baseRate, baseP99 float64
	baseSet           bool
	shiftRun          int
	drifts            int64
	lastDriftAt       sim.Time

	// Last closed window's summary, for window-over-window views.
	lastRate float64
	lastP99  int64
}

// NewDigest returns a digest rotating on the given window span
// (DefaultWindow when non-positive).
func NewDigest(window sim.Time) *Digest {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Digest{window: window}
}

// Record folds one sample at virtual instant at into the digest, rotating
// windows as needed. Samples are merged from shard buffers in submission
// order, so a sample's instant is never ahead of the engine clock; a
// sample landing after its window closed (buffered across a boundary)
// joins the current window — standard late-data policy for tumbling
// windows.
func (d *Digest) Record(at sim.Time, v int64) {
	if !d.opened {
		d.opened = true
		d.start = at
		d.firstAt = at
	}
	d.advance(at)
	w := &d.ring[d.cur]
	w.count++
	w.sum += v
	w.sk.Add(v)
	d.count++
	d.sum += v
	if !d.ewmaSet {
		d.ewma, d.ewmaSet = float64(v), true
	} else {
		d.ewma += ewmaAlpha * (float64(v) - d.ewma)
	}
}

// advance rotates the ring until at falls inside the current window. A gap
// longer than the whole ring fast-forwards: the intervening windows were
// empty and carry no information worth closing one by one.
func (d *Digest) advance(at sim.Time) {
	if gap := at - d.start; gap >= sim.Time(ringWindows)*d.window {
		skip := gap / d.window
		d.start += skip * d.window
		for i := range d.ring {
			d.ring[i].reset()
		}
		d.filled = 0
		// The stream went idle for the whole ring; the old baseline
		// describes a regime that ended, so the next closed window
		// re-seeds it.
		d.baseSet = false
		d.shiftRun = 0
		return
	}
	for at >= d.start+d.window {
		d.closeWindow(d.start + d.window)
		d.cur = (d.cur + 1) % ringWindows
		d.ring[d.cur].reset()
		d.start += d.window
		if d.filled < ringWindows-1 {
			d.filled++
		}
	}
}

// closeWindow runs the drift detector over the window that just ended:
// its event rate and p99 are compared against smoothed baselines, and
// driftSustain consecutive windows deviating by more than driftFactor
// flag one regime shift. The baseline only absorbs unshifted windows, so
// a genuine new regime keeps deviating until flagged — then the baseline
// snaps to it and the detector re-arms for the next shift.
func (d *Digest) closeWindow(endAt sim.Time) {
	w := &d.ring[d.cur]
	rate := float64(w.count) / d.window.Seconds()
	var p99 int64
	if w.count > 0 {
		p99 = w.sk.Quantile(0.99)
	}
	d.lastRate, d.lastP99 = rate, p99

	if !d.baseSet {
		if w.count >= driftMinCount {
			d.baseRate, d.baseP99, d.baseSet = rate, float64(p99), true
		}
		return
	}
	shifted := false
	baseCount := d.baseRate * d.window.Seconds()
	if w.count >= driftMinCount || baseCount >= driftMinCount {
		if rate > driftFactor*d.baseRate || rate < d.baseRate/driftFactor {
			shifted = true
		}
	}
	if w.count >= driftMinCount && d.baseP99 > 0 {
		if f := float64(p99); f > driftFactor*d.baseP99 || f < d.baseP99/driftFactor {
			shifted = true
		}
	}
	if shifted {
		d.shiftRun++
		if d.shiftRun >= driftSustain {
			d.drifts++
			d.lastDriftAt = endAt
			d.shiftRun = 0
			// The new regime becomes the baseline.
			d.baseRate, d.baseP99 = rate, float64(p99)
			if w.count < driftMinCount {
				d.baseSet = false
			}
		}
		return
	}
	d.shiftRun = 0
	d.baseRate += baselineAlpha * (rate - d.baseRate)
	if w.count >= driftMinCount {
		d.baseP99 += baselineAlpha * (float64(p99) - d.baseP99)
	}
}

// Count returns the all-time sample count.
func (d *Digest) Count() int64 { return d.count }

// Sum returns the all-time sample sum.
func (d *Digest) Sum() int64 { return d.sum }

// Mean returns the all-time mean sample value (0 when empty).
func (d *Digest) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// EWMA returns the exponentially weighted moving average of the sample
// values (0 until the first sample, which seeds it).
func (d *Digest) EWMA() float64 { return d.ewma }

// span returns the virtual time the live ring covers as of now.
func (d *Digest) span(now sim.Time) sim.Time {
	if !d.opened {
		return 0
	}
	covered := now - (d.start - sim.Time(d.filled)*d.window)
	if oldest := now - d.firstAt; oldest < covered {
		covered = oldest
	}
	return covered
}

// Rate returns the recent event rate in samples per second: the events in
// the live ring over the virtual time it covers. Idle periods inside the
// ring pull the rate down; history older than the ring has aged out.
func (d *Digest) Rate(now sim.Time) float64 {
	d.advance2(now)
	var n int64
	for i := range d.ring {
		n += d.ring[i].count
	}
	sp := d.span(now)
	if sp <= 0 {
		if n > 0 {
			return float64(n) / d.window.Seconds()
		}
		return 0
	}
	return float64(n) / sp.Seconds()
}

// RecentMean returns the mean sample value over the live ring (0 when the
// ring holds no samples) — the windowed counterpart of Mean, used where a
// policy must track the current regime rather than the whole run (e.g.
// the adaptive coalescing window's inter-arrival estimate).
func (d *Digest) RecentMean(now sim.Time) float64 {
	d.advance2(now)
	var n, sum int64
	for i := range d.ring {
		n += d.ring[i].count
		sum += d.ring[i].sum
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Quantile returns the q-quantile over the live ring by scanning the
// windows' bucket counts together — no merge allocation, O(buckets×ring).
func (d *Digest) Quantile(now sim.Time, q float64) int64 {
	d.advance2(now)
	var total int64
	for i := range d.ring {
		total += d.ring[i].sk.count
	}
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen int64
	for b := 0; b < nBuckets; b++ {
		for i := range d.ring {
			seen += int64(d.ring[i].sk.buckets[b])
		}
		if seen >= target {
			return valueOf(b)
		}
	}
	return valueOf(nBuckets - 1)
}

// advance2 rotates windows on a read path (reads see time move even when
// no sample arrived since).
func (d *Digest) advance2(now sim.Time) {
	if d.opened && now >= d.start+d.window {
		d.advance(now)
	}
}

// Drifts returns the regime shifts flagged so far.
func (d *Digest) Drifts() int64 { return d.drifts }

// LastDriftAt returns the virtual instant of the most recent flagged
// shift (0 when none).
func (d *Digest) LastDriftAt() sim.Time { return d.lastDriftAt }

// WindowRate returns the last closed window's event rate (samples/s).
func (d *Digest) WindowRate() float64 { return d.lastRate }

// WindowP99 returns the last closed window's p99 sample value.
func (d *Digest) WindowP99() int64 { return d.lastP99 }
