package telemetry

import (
	"fmt"

	"dsasim/internal/sim"
)

// ID names one registered stream within a Hub.
type ID int

// shardBuf is the shard-local buffer depth. 64 samples keeps the common
// case (a policy read every few microseconds draining a handful of
// completions) entirely within one flush, while bounding how stale a
// digest can be to one buffer's worth of events between reads.
const shardBuf = 64

// sample is one buffered recording: which stream, when, what value.
type sample struct {
	id ID
	at sim.Time
	v  int64
}

// Hub owns the registered streams and their digests. Streams are created
// up front (Stream), recorded into through Shards, and read through
// Digest views; Sync merges every shard's buffered samples into the
// digests in global timestamp order (ties broken by shard registration
// order), so a given recording history always merges the same way
// regardless of which shard recorded what or when reads happen — the
// order-sensitive views (EWMA) are as deterministic as the commutative
// ones.
type Hub struct {
	window  sim.Time
	names   []string
	digests []*Digest
	shards  []*Shard

	// cadence, when positive, rate-limits the shard→digest merge: a Sync
	// within cadence of the last merge returns without draining, so hot
	// policy paths that sync before every read share one periodic
	// aggregation instead of merging per call (the BriskStream
	// periodic-aggregation point). Zero (the default) merges on every
	// Sync, the exact pre-cadence behavior.
	cadence  sim.Time
	lastSync sim.Time
	synced   bool
}

// NewHub returns a hub whose digests rotate on the given window span
// (DefaultWindow when non-positive).
func NewHub(window sim.Time) *Hub {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Hub{window: window}
}

// Window returns the tumbling-window span the hub's digests rotate on.
func (h *Hub) Window() sim.Time { return h.window }

// Stream registers a named stream and returns its ID. Registration
// allocates; it happens at topology-build time, never on the hot path.
func (h *Hub) Stream(name string) ID {
	h.names = append(h.names, name)
	h.digests = append(h.digests, NewDigest(h.window))
	return ID(len(h.digests) - 1)
}

// Name returns the stream's registered name.
func (h *Hub) Name(id ID) string { return h.names[id] }

// Streams returns the number of registered streams.
func (h *Hub) Streams() int { return len(h.digests) }

// Digest returns the stream's digest. Callers must Sync first (or hold a
// freshly synced hub) for the view to include buffered shard samples.
func (h *Hub) Digest(id ID) *Digest {
	if int(id) < 0 || int(id) >= len(h.digests) {
		panic(fmt.Sprintf("telemetry: unknown stream id %d", id))
	}
	return h.digests[id]
}

// NewShard returns a shard-local recorder bound to this hub. Each
// recording context (one per device plane, one per tenant) gets its own
// shard so the hot path is a couple of array writes with no sharing.
func (h *Hub) NewShard() *Shard {
	s := &Shard{h: h}
	h.shards = append(h.shards, s)
	return s
}

// SetSyncCadence bounds how often Sync actually merges the shards: calls
// within d of the last merge are no-ops, so views can be at most d stale.
// A non-positive d restores merge-on-every-Sync.
func (h *Hub) SetSyncCadence(d sim.Time) { h.cadence = d }

// Sync merges every shard's buffered samples into the digests in global
// timestamp order and rotates windows up to now. It is the pull half of
// the shard-local/periodic-merge design: policies call it (rate-limited by
// SetSyncCadence and memoized per virtual instant at the policy layer)
// before reading views, instead of a wall-clock merge timer that would
// keep the event loop alive. Allocation-free.
func (h *Hub) Sync(now sim.Time) {
	if h.synced && h.cadence > 0 && now < h.lastSync+h.cadence {
		return
	}
	h.lastSync, h.synced = now, true
	h.merge()
	for _, d := range h.digests {
		d.advance2(now)
	}
}

// merge is the k-way shard drain: repeatedly take the buffered sample with
// the smallest timestamp across all shards (earliest-registered shard wins
// ties) and record it into its digest. With strictly increasing recording
// timestamps the merged order equals the global recording order whatever
// shard each sample landed on, which is what makes the order-sensitive
// EWMA view shard-count-invariant. Linear scan per pop: shard counts are
// small (one per device plane plus one per tenant) and buffers are 64
// deep, and it keeps the merge allocation-free.
func (h *Hub) merge() {
	for {
		var best *Shard
		for _, s := range h.shards {
			if s.pos < s.n && (best == nil || s.buf[s.pos].at < best.buf[best.pos].at) {
				best = s
			}
		}
		if best == nil {
			break
		}
		b := &best.buf[best.pos]
		best.pos++
		h.digests[b.id].Record(b.at, b.v)
	}
	for _, s := range h.shards {
		s.n, s.pos = 0, 0
	}
}

// Shard is a shard-local recording buffer: Record appends into a fixed
// array, and the buffer merges into the hub's digests when it fills or at
// the next Sync. No locks, no allocations, no cross-shard sharing on the
// recording path.
type Shard struct {
	h   *Hub
	n   int
	pos int // merge cursor into buf, owned by Hub.merge
	buf [shardBuf]sample
}

// Record buffers one sample for the stream. Flushes inline when the
// buffer fills — the overflow fallback merges this shard's samples in
// recording order ahead of the next Sync (still allocation-free, since
// digests record in place); size the sync cadence so the common case
// stays under one buffer per merge.
func (s *Shard) Record(id ID, at sim.Time, v int64) {
	s.buf[s.n] = sample{id: id, at: at, v: v}
	s.n++
	if s.n == shardBuf {
		s.flush()
	}
}

// flush merges the buffered samples into the hub's digests in recording
// order (the single-shard overflow path; Sync uses the k-way merge).
func (s *Shard) flush() {
	for i := 0; i < s.n; i++ {
		b := &s.buf[i]
		s.h.digests[b.id].Record(b.at, b.v)
	}
	s.n, s.pos = 0, 0
}
