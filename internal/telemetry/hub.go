package telemetry

import (
	"fmt"

	"dsasim/internal/sim"
)

// ID names one registered stream within a Hub.
type ID int

// shardBuf is the shard-local buffer depth. 64 samples keeps the common
// case (a policy read every few microseconds draining a handful of
// completions) entirely within one flush, while bounding how stale a
// digest can be to one buffer's worth of events between reads.
const shardBuf = 64

// sample is one buffered recording: which stream, when, what value.
type sample struct {
	id ID
	at sim.Time
	v  int64
}

// Hub owns the registered streams and their digests. Streams are created
// up front (Stream), recorded into through Shards, and read through
// Digest views; Sync drains every shard into the digests in shard
// registration order, so a given recording history always merges the same
// way regardless of when reads happen.
type Hub struct {
	window  sim.Time
	names   []string
	digests []*Digest
	shards  []*Shard
}

// NewHub returns a hub whose digests rotate on the given window span
// (DefaultWindow when non-positive).
func NewHub(window sim.Time) *Hub {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Hub{window: window}
}

// Window returns the tumbling-window span the hub's digests rotate on.
func (h *Hub) Window() sim.Time { return h.window }

// Stream registers a named stream and returns its ID. Registration
// allocates; it happens at topology-build time, never on the hot path.
func (h *Hub) Stream(name string) ID {
	h.names = append(h.names, name)
	h.digests = append(h.digests, NewDigest(h.window))
	return ID(len(h.digests) - 1)
}

// Name returns the stream's registered name.
func (h *Hub) Name(id ID) string { return h.names[id] }

// Streams returns the number of registered streams.
func (h *Hub) Streams() int { return len(h.digests) }

// Digest returns the stream's digest. Callers must Sync first (or hold a
// freshly synced hub) for the view to include buffered shard samples.
func (h *Hub) Digest(id ID) *Digest {
	if int(id) < 0 || int(id) >= len(h.digests) {
		panic(fmt.Sprintf("telemetry: unknown stream id %d", id))
	}
	return h.digests[id]
}

// NewShard returns a shard-local recorder bound to this hub. Each
// recording context (one per device plane, one per tenant) gets its own
// shard so the hot path is a couple of array writes with no sharing.
func (h *Hub) NewShard() *Shard {
	s := &Shard{h: h}
	h.shards = append(h.shards, s)
	return s
}

// Sync drains every shard into the digests and rotates windows up to now.
// It is the pull half of the shard-local/periodic-merge design: policies
// call it (memoized per virtual instant at the policy layer) before
// reading views, instead of a wall-clock merge timer that would keep the
// event loop alive. Allocation-free.
func (h *Hub) Sync(now sim.Time) {
	for _, s := range h.shards {
		s.flush()
	}
	for _, d := range h.digests {
		d.advance2(now)
	}
}

// Shard is a shard-local recording buffer: Record appends into a fixed
// array, and the buffer merges into the hub's digests when it fills or at
// the next Sync. No locks, no allocations, no cross-shard sharing on the
// recording path.
type Shard struct {
	h   *Hub
	n   int
	buf [shardBuf]sample
}

// Record buffers one sample for the stream. Flushes inline when the
// buffer fills — still allocation-free, since digests record in place.
func (s *Shard) Record(id ID, at sim.Time, v int64) {
	s.buf[s.n] = sample{id: id, at: at, v: v}
	s.n++
	if s.n == shardBuf {
		s.flush()
	}
}

// flush merges the buffered samples into the hub's digests in recording
// order.
func (s *Shard) flush() {
	for i := 0; i < s.n; i++ {
		b := &s.buf[i]
		s.h.digests[b.id].Record(b.at, b.v)
	}
	s.n = 0
}
