// Package delta implements the DSA delta-record format (Table 1: Create
// Delta Record / Apply Delta Record). A delta record lists each 8-byte word
// that differs between an original and a modified buffer as a (word offset,
// new data) pair, letting software track and replay sparse modifications —
// the primitive VM live-migration dirty tracking builds on.
//
// Record entry layout (little-endian, per the DSA specification): 2-byte
// word offset (in 8-byte units), 6 bytes reserved... — the hardware format
// packs a 10-byte entry; we use the natural 2+8 layout with the offset in
// units of 8 bytes, which preserves the format's defining constraints: 8-byte
// granularity and a 16-bit offset limiting a region to 512 KiB.
package delta

import (
	"encoding/binary"
	"fmt"
)

// EntrySize is the encoded size of one delta entry: a 2-byte word offset
// plus the 8 replacement bytes.
const EntrySize = 10

// MaxRegion is the largest comparable region: 2^16 words of 8 bytes.
const MaxRegion = 64 * 1024 * 8

// ErrRecordFull reports that the differences did not fit in the caller's
// maximum delta size. The DSA completion record signals the same condition
// so software can fall back to a full copy.
var ErrRecordFull = fmt.Errorf("delta: record overflow (differences exceed max delta size)")

// Create writes a delta record of the differences between original and
// modified into record, returning the number of record bytes used.
//
// original and modified must be the same length, a multiple of 8, and at
// most MaxRegion. record's capacity bounds the differences that can be
// recorded; if they do not fit, Create returns ErrRecordFull (with record
// contents undefined), mirroring the DSA "delta record full" status.
func Create(record, original, modified []byte) (int, error) {
	if len(original) != len(modified) {
		return 0, fmt.Errorf("delta: buffer sizes differ: %d vs %d", len(original), len(modified))
	}
	if len(original)%8 != 0 {
		return 0, fmt.Errorf("delta: region size %d not a multiple of 8", len(original))
	}
	if len(original) > MaxRegion {
		return 0, fmt.Errorf("delta: region size %d exceeds max %d", len(original), MaxRegion)
	}
	used := 0
	for w := 0; w < len(original)/8; w++ {
		o := binary.LittleEndian.Uint64(original[w*8:])
		m := binary.LittleEndian.Uint64(modified[w*8:])
		if o == m {
			continue
		}
		if used+EntrySize > len(record) {
			return 0, ErrRecordFull
		}
		binary.LittleEndian.PutUint16(record[used:], uint16(w))
		binary.LittleEndian.PutUint64(record[used+2:], m)
		used += EntrySize
	}
	return used, nil
}

// Apply replays a delta record onto dst (which should hold the original
// data) to reconstruct the modified buffer. recordLen must be the value
// returned by Create.
func Apply(dst, record []byte, recordLen int) error {
	if recordLen%EntrySize != 0 {
		return fmt.Errorf("delta: record length %d not a multiple of entry size %d", recordLen, EntrySize)
	}
	if recordLen > len(record) {
		return fmt.Errorf("delta: record length %d exceeds record buffer %d", recordLen, len(record))
	}
	for off := 0; off < recordLen; off += EntrySize {
		w := int(binary.LittleEndian.Uint16(record[off:]))
		if (w+1)*8 > len(dst) {
			return fmt.Errorf("delta: entry word offset %d outside destination of %d bytes", w, len(dst))
		}
		binary.LittleEndian.PutUint64(dst[w*8:], binary.LittleEndian.Uint64(record[off+2:]))
	}
	return nil
}

// Count returns the number of entries in a record of recordLen bytes.
func Count(recordLen int) int { return recordLen / EntrySize }
