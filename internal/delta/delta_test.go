package delta

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dsasim/internal/sim"
)

func TestCreateApplyRoundTrip(t *testing.T) {
	orig := make([]byte, 1024)
	sim.NewRand(1).Bytes(orig)
	mod := append([]byte(nil), orig...)
	mod[8] ^= 0xFF
	mod[500] ^= 0x01
	mod[1016] ^= 0x80

	record := make([]byte, len(orig)/8*EntrySize)
	n, err := Create(record, orig, mod)
	if err != nil {
		t.Fatal(err)
	}
	if Count(n) != 3 {
		t.Fatalf("entries = %d, want 3", Count(n))
	}
	dst := append([]byte(nil), orig...)
	if err := Apply(dst, record, n); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, mod) {
		t.Fatal("Apply did not reconstruct modified buffer")
	}
}

func TestIdenticalBuffersEmptyDelta(t *testing.T) {
	buf := make([]byte, 256)
	sim.NewRand(2).Bytes(buf)
	n, err := Create(make([]byte, 16), buf, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("identical buffers produced %d delta bytes", n)
	}
}

func TestRecordOverflow(t *testing.T) {
	orig := make([]byte, 64)
	mod := make([]byte, 64)
	for i := range mod {
		mod[i] = 0xFF // every word differs: 8 entries needed
	}
	_, err := Create(make([]byte, EntrySize*3), orig, mod)
	if !errors.Is(err, ErrRecordFull) {
		t.Fatalf("Create = %v, want ErrRecordFull", err)
	}
}

func TestExactCapacityFits(t *testing.T) {
	orig := make([]byte, 64)
	mod := append([]byte(nil), orig...)
	mod[0], mod[63] = 1, 1 // 2 words differ
	n, err := Create(make([]byte, EntrySize*2), orig, mod)
	if err != nil || Count(n) != 2 {
		t.Fatalf("Create = (%d,%v), want 2 entries", Count(n), err)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Create(nil, make([]byte, 8), make([]byte, 16)); err == nil {
		t.Fatal("Create accepted mismatched sizes")
	}
	if _, err := Create(nil, make([]byte, 7), make([]byte, 7)); err == nil {
		t.Fatal("Create accepted non-multiple-of-8 size")
	}
	if _, err := Create(nil, make([]byte, MaxRegion+8), make([]byte, MaxRegion+8)); err == nil {
		t.Fatal("Create accepted oversized region")
	}
	if err := Apply(make([]byte, 8), make([]byte, EntrySize), 5); err == nil {
		t.Fatal("Apply accepted ragged record length")
	}
	if err := Apply(make([]byte, 8), make([]byte, EntrySize), EntrySize*2); err == nil {
		t.Fatal("Apply accepted record length beyond buffer")
	}
}

func TestApplyRejectsOutOfRangeOffset(t *testing.T) {
	record := make([]byte, EntrySize)
	record[0] = 0xFF // word offset 255 — outside an 8-byte destination
	if err := Apply(make([]byte, 8), record, EntrySize); err == nil {
		t.Fatal("Apply accepted out-of-range word offset")
	}
}

func TestCreateApplyQuick(t *testing.T) {
	r := sim.NewRand(99)
	f := func(seed uint64, flips uint8) bool {
		size := (int(seed%128) + 1) * 8
		orig := make([]byte, size)
		r.Bytes(orig)
		mod := append([]byte(nil), orig...)
		for i := 0; i < int(flips)%16; i++ {
			mod[r.Intn(size)] ^= byte(r.Uint64() | 1)
		}
		record := make([]byte, size/8*EntrySize)
		n, err := Create(record, orig, mod)
		if err != nil {
			return false
		}
		dst := append([]byte(nil), orig...)
		if err := Apply(dst, record, n); err != nil {
			return false
		}
		return bytes.Equal(dst, mod)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAtMaxRegionBoundary(t *testing.T) {
	orig := make([]byte, MaxRegion)
	mod := append([]byte(nil), orig...)
	mod[MaxRegion-1] = 1 // last word differs: offset must encode 0xFFFF
	record := make([]byte, EntrySize)
	n, err := Create(record, orig, mod)
	if err != nil || Count(n) != 1 {
		t.Fatalf("Create at boundary = (%d,%v)", n, err)
	}
	dst := append([]byte(nil), orig...)
	if err := Apply(dst, record, n); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, mod) {
		t.Fatal("boundary word not reconstructed")
	}
}
