package fabric

import (
	"bytes"
	"fmt"
	"time"

	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Barrier synchronizes a fixed set of simulated processes across steps.
type Barrier struct {
	e       *sim.Engine
	n       int
	arrived int
	gen     int
	sig     sim.Signal
}

// NewBarrier creates a barrier for n processes.
func NewBarrier(e *sim.Engine, n int) *Barrier {
	return &Barrier{e: e, n: n}
}

// Wait blocks until all n processes have arrived.
func (b *Barrier) Wait(p *sim.Proc) {
	g := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.sig.Broadcast(b.e)
		return
	}
	for b.gen == g {
		p.Wait(&b.sig)
	}
}

// reduceGBps is the core's byte-wise reduction rate (AVX-style vector add:
// two reads, one write over LLC-warm chunks).
const reduceGBps = 25.0

// AllReduceResult reports one collective measurement.
type AllReduceResult struct {
	Duration time.Duration // per AllReduce operation
	Verified bool          // all ranks converged to the correct reduction
}

// AllReduce runs a ring all-reduce (reduce-scatter + all-gather) of m bytes
// across the given number of ranks, with byte-wise wrap-around addition as
// the reduction operator, and returns the measured per-operation time. The
// payloads are real: the result is verified against a serial reduction.
func AllReduce(d *Domain, ranks int, m int64, iters int) (AllReduceResult, error) {
	if ranks < 2 {
		return AllReduceResult{}, fmt.Errorf("fabric: all-reduce needs ≥2 ranks")
	}
	// Pad so chunks are equal and 8-byte aligned.
	chunk := (m + int64(ranks)*8 - 1) / (int64(ranks) * 8) * 8
	total := chunk * int64(ranks)

	eps := make([]*Endpoint, ranks)
	data := make([]*mem.Buffer, ranks)
	stage := make([]*mem.Buffer, ranks)
	for r := 0; r < ranks; r++ {
		ep, err := d.NewEndpoint()
		if err != nil {
			return AllReduceResult{}, err
		}
		ep.SerializeCopies = true // every rank is busy during collectives
		eps[r] = ep
		data[r] = ep.Alloc(total)
		stage[r] = ep.Alloc(chunk)
		sim.NewRand(uint64(r)*977 + 13).Bytes(data[r].Bytes())
	}
	// Expected result: byte-wise sum across ranks.
	want := make([]byte, total)
	for r := 0; r < ranks; r++ {
		for i, v := range data[r].Bytes() {
			want[i] += v
		}
	}

	bar := NewBarrier(d.E, ranks)
	var elapsed sim.Time
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	for r := 0; r < ranks; r++ {
		r := r
		ep := eps[r]
		next := eps[(r+1)%ranks]
		d.E.Go(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			start := p.Now()
			for it := 0; it < iters; it++ {
				// Reduce-scatter: after R-1 steps, rank r holds the fully
				// reduced chunk (r+1) mod R.
				for s := 0; s < ranks-1; s++ {
					ci := ((r-s)%ranks + ranks) % ranks
					if err := ep.Send(p, next, data[r], int64(ci)*chunk, stage[(r+1)%ranks], 0, chunk); err != nil {
						fail(err)
						return
					}
					bar.Wait(p) // all segments delivered for this step
					// Reduce the received chunk into the local buffer.
					ri := ((r-s-1)%ranks + ranks) % ranks
					dst := data[r].Slice(int64(ri)*chunk, chunk)
					src := stage[r].Bytes()
					for i := range dst {
						dst[i] += src[i]
					}
					red := sim.GBps(chunk, reduceGBps)
					ep.Core.ChargeBusy(red)
					if d.Mode == CPUCopy {
						// The core both copies and reduces: the phases
						// serialize. With DSA moving the data, the core
						// reduces while the device streams the next
						// segments, hiding the reduction (G2).
						p.Sleep(red)
					}
					bar.Wait(p)
				}
				// All-gather: circulate the reduced chunks.
				for s := 0; s < ranks-1; s++ {
					ci := ((r+1-s)%ranks + ranks) % ranks
					if err := ep.Send(p, next, data[r], int64(ci)*chunk, data[(r+1)%ranks], int64(ci)*chunk, chunk); err != nil {
						fail(err)
						return
					}
					bar.Wait(p)
				}
			}
			if t := p.Now() - start; t > elapsed {
				elapsed = t
			}
		})
	}
	d.E.Run()
	if runErr != nil {
		return AllReduceResult{}, runErr
	}
	verified := true
	for r := 0; r < ranks; r++ {
		if !bytes.Equal(data[r].Bytes(), want) {
			verified = false
		}
	}
	return AllReduceResult{
		Duration: time.Duration(int64(elapsed) / int64(iters)),
		Verified: verified,
	}, nil
}

// BERTConfig drives the MLPerf BERT pretraining phase model (Fig 18).
type BERTConfig struct {
	Ranks int
	// GradBytes is the gradient volume all-reduced per iteration
	// (BERT-large mixed precision ≈ 650 MB).
	GradBytes int64
	// Forward and Backward are the per-iteration compute phase times
	// (unaffected by the copy engine).
	Forward  time.Duration
	Backward time.Duration
	// SimBytes caps the actually simulated all-reduce volume; the
	// measured time scales linearly to GradBytes (bandwidth-dominated).
	SimBytes int64
}

// BERTResult reports the per-iteration phase timings of Fig 18: AR
// (AllReduce), FT (forward), BT (backward), TT (total).
type BERTResult struct {
	AllReduce time.Duration
	Forward   time.Duration
	Backward  time.Duration
	Total     time.Duration
	Verified  bool
}

// BERT runs the phase model on domain d.
func BERT(d *Domain, cfg BERTConfig) (BERTResult, error) {
	if cfg.GradBytes == 0 {
		cfg.GradBytes = 650 << 20
	}
	// Compute phases sized so the communication share matches the paper's
	// end-to-end observation (a few percent of iteration time, Fig 18).
	if cfg.Forward == 0 {
		cfg.Forward = 1500 * time.Millisecond
	}
	if cfg.Backward == 0 {
		cfg.Backward = 2900 * time.Millisecond
	}
	if cfg.SimBytes == 0 {
		cfg.SimBytes = 8 << 20
	}
	simBytes := cfg.GradBytes
	if simBytes > cfg.SimBytes {
		simBytes = cfg.SimBytes
	}
	ar, err := AllReduce(d, cfg.Ranks, simBytes, 1)
	if err != nil {
		return BERTResult{}, err
	}
	scaled := time.Duration(float64(ar.Duration) * float64(cfg.GradBytes) / float64(simBytes))
	return BERTResult{
		AllReduce: scaled,
		Forward:   cfg.Forward,
		Backward:  cfg.Backward,
		Total:     cfg.Forward + cfg.Backward + scaled,
		Verified:  ar.Verified,
	}, nil
}
