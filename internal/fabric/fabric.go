// Package fabric reimplements the paper's libfabric/HPC case study
// (Appendix A, Figs 17/18): intra-node messaging through the Segmentation
// and Reassembly (SAR) protocol — where every message is chunked through
// bounce buffers with one send-side and one receive-side copy — with the
// copies executed on the CPU or offloaded to DSA. On top of it sit the
// Pingpong and RMA microbenchmarks, the OSU-style bandwidth and ring
// AllReduce collectives, and the BERT pretraining phase model.
package fabric

import (
	"fmt"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// Mode selects the SAR copy engine.
type Mode int

// Copy modes.
const (
	// CPUCopy performs SAR copies with memcpy on the cores.
	CPUCopy Mode = iota
	// DSACopy offloads SAR copies as asynchronous DSA descriptors.
	DSACopy
)

// SegSize is the SAR bounce-buffer segment size.
const SegSize int64 = 64 << 10

// Domain is one fabric provider domain: the shared engine, system, node,
// copy mode, and — when offloading — the offload service fronting the DSA
// work queues.
type Domain struct {
	E    *sim.Engine
	Sys  *mem.System
	Node *mem.Node
	Mode Mode
	WQs  []*dsa.WQ
	CPU  cpu.Model
	Svc  *offload.Service

	nextID int
}

// NewDomain creates a fabric domain.
func NewDomain(e *sim.Engine, sys *mem.System, node *mem.Node, model cpu.Model, mode Mode, wqs []*dsa.WQ) (*Domain, error) {
	d := &Domain{E: e, Sys: sys, Node: node, Mode: mode, WQs: wqs, CPU: model}
	if mode == DSACopy {
		if len(wqs) == 0 {
			return nil, fmt.Errorf("fabric: DSA mode needs work queues")
		}
		// Endpoints supply their own address spaces and cores (SharedSpace
		// + OnCore), so no base options are needed here.
		svc, err := offload.NewService(e, sys, wqs, offload.WithCPUModel(model))
		if err != nil {
			return nil, err
		}
		d.Svc = svc
	}
	return d, nil
}

// Window is the number of SAR segments in flight per transfer in DSA mode.
const Window = 8

// Endpoint is one communication endpoint (an MPI rank).
type Endpoint struct {
	Dom  *Domain
	ID   int
	AS   *mem.AddressSpace
	Core *cpu.Core
	T    *offload.Tenant

	// bounce is the ring of SAR bounce segments for sends from this
	// endpoint; inbox is the ring where peers deposit segments for it.
	// Slot k%Window is only rewritten after its previous occupant's copies
	// completed, keeping the deferred device copies functionally correct.
	bounce []*mem.Buffer
	inbox  []*mem.Buffer

	// SerializeCopies makes CPU-mode sends charge the send-side and
	// receive-side copies sequentially. Point-to-point tests leave it
	// false (the idle peer core absorbs the receive copy, so the copies
	// pipeline); collectives set it because every core is busy with its
	// own send (AllReduce).
	SerializeCopies bool

	BytesSent int64
}

// NewEndpoint creates an endpoint with its own address space and core.
func (d *Domain) NewEndpoint() (*Endpoint, error) {
	id := d.nextID
	d.nextID++
	as := mem.NewAddressSpace(300 + id)
	core := cpu.NewCore(100+id, 0, d.Sys, as, d.CPU)
	ep := &Endpoint{Dom: d, ID: id, AS: as, Core: core}
	for i := 0; i < Window; i++ {
		b := as.Alloc(SegSize, mem.OnNode(d.Node))
		in := as.Alloc(SegSize, mem.OnNode(d.Node))
		// Bounce buffers are reused constantly and stay LLC-hot.
		b.CacheResident = true
		in.CacheResident = true
		ep.bounce = append(ep.bounce, b)
		ep.inbox = append(ep.inbox, in)
	}
	if d.Mode == DSACopy {
		tn, err := d.Svc.NewTenant(offload.SharedSpace(as), offload.OnCore(core))
		if err != nil {
			return nil, err
		}
		ep.T = tn
	}
	return ep, nil
}

// Alloc allocates an application buffer in the endpoint's address space.
// Small buffers (≤16 KB) are marked LLC-resident: messaging benchmarks
// reuse them every iteration, so small messages run cache-hot — which is
// why the CPU wins below the ~32 KB crossover in Fig 17a.
func (ep *Endpoint) Alloc(n int64) *mem.Buffer {
	b := ep.AS.Alloc(n, mem.OnNode(ep.Dom.Node))
	if n <= 16<<10 {
		b.CacheResident = true
	}
	return b
}

// copySeg performs one SAR copy of n bytes on this endpoint's engine.
// Returns the in-flight future in DSA mode (nil in CPU mode, where the
// call blocks for the copy duration).
func (ep *Endpoint) copySeg(p *sim.Proc, dst, src mem.Addr, n int64) (*offload.Future, error) {
	if ep.Dom.Mode == DSACopy {
		return ep.T.Copy(p, dst, src, n, offload.On(offload.Hardware))
	}
	dur, err := ep.Core.Memcpy(dst, src, n)
	if err != nil {
		return nil, err
	}
	p.Sleep(dur)
	return nil, nil
}

// Send transfers n bytes from the local buffer src to the peer's dst using
// SAR: per segment, copy src→bounce (sender side) and inbox→dst (receiver
// side; SAR progress executes it on the initiating thread). In DSA mode the
// per-segment copies are issued asynchronously with a bounded window.
func (ep *Endpoint) Send(p *sim.Proc, peer *Endpoint, src *mem.Buffer, srcOff int64, dst *mem.Buffer, dstOff, n int64) error {
	type segmentJobs struct{ j1, j2 *offload.Future }
	ring := make([]segmentJobs, Window)
	waitSeg := func(s segmentJobs) error {
		for _, j := range []*offload.Future{s.j1, s.j2} {
			if j == nil {
				continue
			}
			if _, err := j.Wait(p, offload.Poll); err != nil {
				return err
			}
		}
		return nil
	}
	k := 0
	for off := int64(0); off < n; off += SegSize {
		seg := SegSize
		if off+seg > n {
			seg = n - off
		}
		slot := k % Window
		// Reclaim the slot from Window segments ago before reusing its
		// bounce/inbox buffers.
		if err := waitSeg(ring[slot]); err != nil {
			return err
		}
		if ep.Dom.Mode == CPUCopy {
			d1, err := ep.Core.Memcpy(ep.bounce[slot].Addr(0), src.Addr(srcOff+off), seg)
			if err != nil {
				return err
			}
			copy(peer.inbox[slot].Bytes()[:seg], src.Slice(srcOff+off, seg))
			d2, err := peer.Core.Memcpy(dst.Addr(dstOff+off), peer.inbox[slot].Addr(0), seg)
			if err != nil {
				return err
			}
			wall := d1
			if ep.SerializeCopies {
				// Every core is busy: its receive-side copy cannot
				// overlap its own send-side work.
				wall = d1 + d2
			} else if d2 > wall {
				// The peer core is idle and pipelines the receive copy.
				wall = d2
			}
			p.Sleep(wall)
			k++
			continue
		}
		// Sender-side copy: application → bounce.
		j1, err := ep.copySeg(p, ep.bounce[slot].Addr(0), src.Addr(srcOff+off), seg)
		if err != nil {
			return err
		}
		// The segment crosses the shared-memory hand-off into the peer's
		// inbox slot (functional payload flow).
		copy(peer.inbox[slot].Bytes()[:seg], src.Slice(srcOff+off, seg))
		// Receiver-side copy: inbox → application buffer.
		j2, err := peer.copySeg(p, dst.Addr(dstOff+off), peer.inbox[slot].Addr(0), seg)
		if err != nil {
			return err
		}
		ring[slot] = segmentJobs{j1, j2}
		k++
	}
	for _, s := range ring {
		if err := waitSeg(s); err != nil {
			return err
		}
	}
	ep.BytesSent += n
	return nil
}

// Pingpong measures the libfabric PP test: two endpoints exchange messages
// of size n for iters round trips. It returns one-way throughput in GB/s.
func Pingpong(d *Domain, n int64, iters int) (float64, error) {
	a, err := d.NewEndpoint()
	if err != nil {
		return 0, err
	}
	b, err := d.NewEndpoint()
	if err != nil {
		return 0, err
	}
	bufA := a.Alloc(n)
	bufB := b.Alloc(n)
	sim.NewRand(1).Bytes(bufA.Bytes())

	var elapsed sim.Time
	var runErr error
	d.E.Go("pingpong", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := a.Send(p, b, bufA, 0, bufB, 0, n); err != nil {
				runErr = err
				return
			}
			if err := b.Send(p, a, bufB, 0, bufA, 0, n); err != nil {
				runErr = err
				return
			}
		}
		elapsed = p.Now() - start
	})
	d.E.Run()
	if runErr != nil {
		return 0, runErr
	}
	oneWay := elapsed / sim.Time(2*iters)
	return sim.Rate(n, oneWay), nil
}

// RMA measures the remote-memory-access bandwidth test: a continuous
// one-direction stream of writes of size n, iters times. Returns GB/s.
func RMA(d *Domain, n int64, iters int) (float64, error) {
	a, err := d.NewEndpoint()
	if err != nil {
		return 0, err
	}
	b, err := d.NewEndpoint()
	if err != nil {
		return 0, err
	}
	bufA := a.Alloc(n)
	bufB := b.Alloc(n)
	sim.NewRand(2).Bytes(bufA.Bytes())

	var elapsed sim.Time
	var runErr error
	d.E.Go("rma", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := a.Send(p, b, bufA, 0, bufB, 0, n); err != nil {
				runErr = err
				return
			}
		}
		elapsed = p.Now() - start
	})
	d.E.Run()
	if runErr != nil {
		return 0, runErr
	}
	return sim.Rate(n*int64(iters), elapsed), nil
}
