package fabric

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func testSystem(e *sim.Engine) *mem.System {
	return mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
}

// dsaWQs builds the socket's full complement of four DSA instances, as a
// libfabric provider on SPR would discover and spread load across.
func dsaWQs(t *testing.T, e *sim.Engine, sys *mem.System) []*dsa.WQ {
	t.Helper()
	var wqs []*dsa.WQ
	for i := 0; i < 4; i++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa"+string(rune('0'+i)), 0))
		if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Shared, Size: 64}}}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		wqs = append(wqs, dev.WQs()...)
	}
	return wqs
}

func newDomain(t *testing.T, mode Mode) *Domain {
	t.Helper()
	e := sim.New()
	sys := testSystem(e)
	var wqs []*dsa.WQ
	if mode == DSACopy {
		wqs = dsaWQs(t, e, sys)
	}
	d, err := NewDomain(e, sys, sys.Node(0), cpu.SPRModel(), mode, wqs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSendDeliversBytes(t *testing.T) {
	for _, mode := range []Mode{CPUCopy, DSACopy} {
		d := newDomain(t, mode)
		a, _ := d.NewEndpoint()
		b, _ := d.NewEndpoint()
		n := int64(300 << 10) // several segments plus a partial one
		src := a.Alloc(n)
		dst := b.Alloc(n)
		sim.NewRand(5).Bytes(src.Bytes())
		var runErr error
		d.E.Go("send", func(p *sim.Proc) {
			runErr = a.Send(p, b, src, 0, dst, 0, n)
		})
		d.E.Run()
		if runErr != nil {
			t.Fatalf("mode %v: %v", mode, runErr)
		}
		if !bytes.Equal(dst.Bytes(), src.Bytes()) {
			t.Fatalf("mode %v: payload corrupted in SAR transfer", mode)
		}
	}
}

func TestPingpongDSAFasterAtLargeMessages(t *testing.T) {
	// Fig 17a: DSA overtakes CPU for messages ≥32KB, up to ~5×.
	n := int64(4 << 20)
	cpuT, err := Pingpong(newDomain(t, CPUCopy), n, 4)
	if err != nil {
		t.Fatal(err)
	}
	dsaT, err := Pingpong(newDomain(t, DSACopy), n, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := dsaT / cpuT
	// Paper reports up to 5.1×; the model lands somewhat higher because
	// its CPU SAR path is fully memory-bound at multi-MB messages.
	if ratio < 2.5 || ratio > 9 {
		t.Fatalf("PP DSA/CPU at 4MB = %.1f (%.1f vs %.1f GB/s), want large (~5×)", ratio, dsaT, cpuT)
	}
}

func TestPingpongCPUWinsSmallMessages(t *testing.T) {
	n := int64(8 << 10)
	cpuT, err := Pingpong(newDomain(t, CPUCopy), n, 10)
	if err != nil {
		t.Fatal(err)
	}
	dsaT, err := Pingpong(newDomain(t, DSACopy), n, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dsaT > cpuT {
		t.Fatalf("DSA (%.2f GB/s) should not beat CPU (%.2f GB/s) at 8KB messages", dsaT, cpuT)
	}
}

func TestRMAThroughput(t *testing.T) {
	n := int64(1 << 20)
	cpuT, err := RMA(newDomain(t, CPUCopy), n, 8)
	if err != nil {
		t.Fatal(err)
	}
	dsaT, err := RMA(newDomain(t, DSACopy), n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dsaT <= cpuT {
		t.Fatalf("RMA DSA (%.1f) should beat CPU (%.1f) at 1MB", dsaT, cpuT)
	}
}

func TestAllReduceCorrectness(t *testing.T) {
	for _, mode := range []Mode{CPUCopy, DSACopy} {
		for _, ranks := range []int{2, 4, 8} {
			d := newDomain(t, mode)
			res, err := AllReduce(d, ranks, 256<<10, 1)
			if err != nil {
				t.Fatalf("mode %v ranks %d: %v", mode, ranks, err)
			}
			if !res.Verified {
				t.Fatalf("mode %v ranks %d: all-reduce result wrong", mode, ranks)
			}
			if res.Duration <= 0 {
				t.Fatalf("mode %v ranks %d: non-positive duration", mode, ranks)
			}
		}
	}
}

func TestAllReduceDSASpeedup(t *testing.T) {
	// Fig 17b shape: DSA accelerates large-message AllReduce
	// substantially (the paper reports up to ~5×; the model reproduces
	// ~2×, see EXPERIMENTS.md on the CPU-overlap assumption).
	m := int64(16 << 20)
	cpuRes, err := AllReduce(newDomain(t, CPUCopy), 4, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsaRes, err := AllReduce(newDomain(t, DSACopy), 4, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(cpuRes.Duration) / float64(dsaRes.Duration)
	if sp < 1.5 {
		t.Fatalf("AllReduce speedup = %.2f (CPU %v vs DSA %v), want >1.5", sp, cpuRes.Duration, dsaRes.Duration)
	}
}

func TestAllReduceRejectsSingleRank(t *testing.T) {
	if _, err := AllReduce(newDomain(t, CPUCopy), 1, 1024, 1); err == nil {
		t.Fatal("single-rank all-reduce accepted")
	}
}

func TestBERTPhases(t *testing.T) {
	// Fig 18: AR speeds up ~3×, total a few percent.
	run := func(mode Mode, ranks int) BERTResult {
		res, err := BERT(newDomain(t, mode), BERTConfig{Ranks: ranks, SimBytes: 16 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatal("BERT all-reduce unverified")
		}
		return res
	}
	cpu2 := run(CPUCopy, 2)
	dsa2 := run(DSACopy, 2)
	arSpeedup := float64(cpu2.AllReduce) / float64(dsa2.AllReduce)
	if arSpeedup < 1.5 {
		t.Fatalf("AR speedup (R2) = %.2f, want ≥1.5", arSpeedup)
	}
	totSpeedup := float64(cpu2.Total) / float64(dsa2.Total)
	if totSpeedup < 1.01 || totSpeedup > 1.5 {
		t.Fatalf("total speedup (R2) = %.3f, want a modest end-to-end gain", totSpeedup)
	}
	// 8 ranks: communication is a larger share of the iteration, so the
	// end-to-end benefit remains material. (The paper's speedup *grows*
	// with ranks; the model's shrinks because its DSA aggregate is capped
	// at the socket's four instances — recorded in EXPERIMENTS.md.)
	cpu8 := run(CPUCopy, 8)
	dsa8 := run(DSACopy, 8)
	ar8 := float64(cpu8.AllReduce) / float64(dsa8.AllReduce)
	if ar8 < 1.3 {
		t.Fatalf("AR speedup (R8) = %.2f, want ≥1.3", ar8)
	}
	tot8 := float64(cpu8.Total) / float64(dsa8.Total)
	if tot8 < 1.01 {
		t.Fatalf("total speedup (R8) = %.3f, want >1", tot8)
	}
}

func TestBarrier(t *testing.T) {
	e := sim.New()
	bar := NewBarrier(e, 3)
	var log []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *sim.Proc) {
			p.Sleep(sim.Time(i+1) * time.Microsecond)
			bar.Wait(p)
			log = append(log, i)
			bar.Wait(p)
			log = append(log, 10+i)
		})
	}
	e.Run()
	if len(log) != 6 {
		t.Fatalf("log = %v", log)
	}
	// All first-phase entries precede all second-phase entries.
	for _, v := range log[:3] {
		if v >= 10 {
			t.Fatalf("barrier did not separate phases: %v", log)
		}
	}
	for _, v := range log[3:] {
		if v < 10 {
			t.Fatalf("barrier did not separate phases: %v", log)
		}
	}
}
