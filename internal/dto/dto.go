// Package dto models the DSA Transparent Offload library the paper's
// authors built (§5, Appendix B): libc-style entry points — Memcpy,
// Memmove, Memset, Memcmp — that intercept calls and transparently replace
// them with synchronous DSA operations when the size crosses a threshold,
// falling back to the CPU otherwise (or when the hardware path fails, e.g.
// on a page fault, mirroring CacheBench's "redo on fault" policy).
package dto

import (
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// DefaultMinSize is the default offload threshold: the paper offloads
// memcpy() calls of 8 KB and larger in the CacheLib study ("DSA improves
// throughput ... generally at or above 8KB", Appendix B).
const DefaultMinSize int64 = 8 << 10

// Stats counts interposer activity.
type Stats struct {
	Calls         int64 // intercepted calls
	Offloaded     int64 // executed on DSA
	SmallFallback int64 // below-threshold calls run on the CPU
	ErrorFallback int64 // hardware errors redone on the CPU
	BytesOffload  int64
	BytesCPU      int64
}

// Interposer intercepts memory-routine calls for one thread, offloading
// through an offload.Tenant.
type Interposer struct {
	T       *offload.Tenant
	MinSize int64

	stats Stats
}

// New wraps tenant t with the default threshold.
func New(t *offload.Tenant) *Interposer {
	return &Interposer{T: t, MinSize: DefaultMinSize}
}

// Stats returns a copy of the interposer counters.
func (i *Interposer) Stats() Stats { return i.stats }

// hw waits out one forced-hardware operation synchronously.
func (i *Interposer) hw(p *sim.Proc, f *offload.Future, err error) (offload.Result, error) {
	if err != nil {
		return offload.Result{}, err
	}
	return f.Wait(p, i.T.Policy().Wait)
}

// cpuCopy runs the software path after a hardware error.
func (i *Interposer) cpuCopy(p *sim.Proc, dst, src mem.Addr, n int64) error {
	dur, err := i.T.Core.Memcpy(dst, src, n)
	if err != nil {
		return err
	}
	p.Sleep(dur)
	i.stats.BytesCPU += n
	return nil
}

// Memcpy copies n bytes, offloading synchronously when n ≥ MinSize.
func (i *Interposer) Memcpy(p *sim.Proc, dst, src mem.Addr, n int64) error {
	i.stats.Calls++
	if n < i.MinSize {
		i.stats.SmallFallback++
		return i.cpuCopy(p, dst, src, n)
	}
	f, err := i.T.Copy(p, dst, src, n, offload.On(offload.Hardware))
	if _, err := i.hw(p, f, err); err != nil {
		i.stats.ErrorFallback++
		return i.cpuCopy(p, dst, src, n)
	}
	i.stats.Offloaded++
	i.stats.BytesOffload += n
	return nil
}

// Memmove is Memcpy in this model (simulated buffers never alias in a way
// the device mishandles; the DSA Memory Move operation handles overlap).
func (i *Interposer) Memmove(p *sim.Proc, dst, src mem.Addr, n int64) error {
	return i.Memcpy(p, dst, src, n)
}

// Memset fills n bytes at dst with the byte value c.
func (i *Interposer) Memset(p *sim.Proc, dst mem.Addr, c byte, n int64) error {
	i.stats.Calls++
	pattern := uint64(0)
	for k := 0; k < 8; k++ {
		pattern = pattern<<8 | uint64(c)
	}
	if n < i.MinSize {
		i.stats.SmallFallback++
		dur, err := i.T.Core.Memset(dst, n, pattern)
		if err != nil {
			return err
		}
		p.Sleep(dur)
		i.stats.BytesCPU += n
		return nil
	}
	f, err := i.T.Fill(p, dst, n, pattern, offload.On(offload.Hardware))
	if _, err := i.hw(p, f, err); err != nil {
		i.stats.ErrorFallback++
		dur, err2 := i.T.Core.Memset(dst, n, pattern)
		if err2 != nil {
			return err2
		}
		p.Sleep(dur)
		i.stats.BytesCPU += n
		return nil
	}
	i.stats.Offloaded++
	i.stats.BytesOffload += n
	return nil
}

// Memcmp compares n bytes at a and b; equal reports whether they match.
func (i *Interposer) Memcmp(p *sim.Proc, a, b mem.Addr, n int64) (equal bool, err error) {
	i.stats.Calls++
	if n < i.MinSize {
		i.stats.SmallFallback++
		_, eq, dur, err := i.T.Core.Memcmp(a, b, n)
		if err != nil {
			return false, err
		}
		p.Sleep(dur)
		i.stats.BytesCPU += n
		return eq, nil
	}
	f, ferr := i.T.Compare(p, a, b, n, offload.On(offload.Hardware))
	res, err := i.hw(p, f, ferr)
	if err != nil {
		i.stats.ErrorFallback++
		_, eq, dur, err2 := i.T.Core.Memcmp(a, b, n)
		if err2 != nil {
			return false, err2
		}
		p.Sleep(dur)
		i.stats.BytesCPU += n
		return eq, nil
	}
	i.stats.Offloaded++
	i.stats.BytesOffload += n
	return !res.Mismatch, nil
}
