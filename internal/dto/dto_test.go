package dto

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

type rig struct {
	e    *sim.Engine
	as   *mem.AddressSpace
	node *mem.Node
	i    *Interposer
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Shared, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	svc, err := offload.NewService(e, sys, dev.WQs())
	if err != nil {
		t.Fatal(err)
	}
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	return &rig{e: e, as: tn.AS, node: sys.Node(0), i: New(tn)}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.e.Go("test", fn)
	r.e.Run()
}

func TestThresholdRouting(t *testing.T) {
	r := newRig(t)
	small := r.as.Alloc(4096, mem.OnNode(r.node))
	big := r.as.Alloc(64<<10, mem.OnNode(r.node))
	dstS := r.as.Alloc(4096, mem.OnNode(r.node))
	dstB := r.as.Alloc(64<<10, mem.OnNode(r.node))
	sim.NewRand(1).Bytes(small.Bytes())
	sim.NewRand(2).Bytes(big.Bytes())

	r.run(t, func(p *sim.Proc) {
		if err := r.i.Memcpy(p, dstS.Addr(0), small.Addr(0), 4096); err != nil {
			t.Error(err)
		}
		if err := r.i.Memcpy(p, dstB.Addr(0), big.Addr(0), 64<<10); err != nil {
			t.Error(err)
		}
	})
	st := r.i.Stats()
	if st.SmallFallback != 1 || st.Offloaded != 1 {
		t.Fatalf("routing = %+v", st)
	}
	if !bytes.Equal(dstS.Bytes(), small.Bytes()) || !bytes.Equal(dstB.Bytes(), big.Bytes()) {
		t.Fatal("copies incomplete")
	}
}

func TestMemsetByteExpansion(t *testing.T) {
	r := newRig(t)
	buf := r.as.Alloc(32<<10, mem.OnNode(r.node))
	r.run(t, func(p *sim.Proc) {
		if err := r.i.Memset(p, buf.Addr(0), 0xAB, buf.Size); err != nil {
			t.Error(err)
		}
	})
	for i, b := range buf.Bytes() {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x", i, b)
		}
	}
	if r.i.Stats().Offloaded != 1 {
		t.Fatalf("32KB memset not offloaded: %+v", r.i.Stats())
	}
}

func TestMemcmpBothPaths(t *testing.T) {
	r := newRig(t)
	a := r.as.Alloc(64<<10, mem.OnNode(r.node))
	b := r.as.Alloc(64<<10, mem.OnNode(r.node))
	sim.NewRand(3).Bytes(a.Bytes())
	copy(b.Bytes(), a.Bytes())
	r.run(t, func(p *sim.Proc) {
		eq, err := r.i.Memcmp(p, a.Addr(0), b.Addr(0), 64<<10) // offloaded
		if err != nil || !eq {
			t.Errorf("big equal: %v %v", eq, err)
		}
		eq, err = r.i.Memcmp(p, a.Addr(0), b.Addr(0), 128) // CPU path
		if err != nil || !eq {
			t.Errorf("small equal: %v %v", eq, err)
		}
		b.Bytes()[40000] ^= 1
		eq, err = r.i.Memcmp(p, a.Addr(0), b.Addr(0), 64<<10)
		if err != nil || eq {
			t.Errorf("mismatch not detected: %v %v", eq, err)
		}
	})
}

func TestPageFaultRedoneOnCPU(t *testing.T) {
	// Appendix B: "the core would redo offloaded operations when
	// encountering page faults during DSA offloading".
	r := newRig(t)
	src := r.as.Alloc(64<<10, mem.OnNode(r.node))
	dst := r.as.Alloc(64<<10, mem.OnNode(r.node), mem.Lazy())
	sim.NewRand(4).Bytes(src.Bytes())
	r.run(t, func(p *sim.Proc) {
		if err := r.i.Memcpy(p, dst.Addr(0), src.Addr(0), 64<<10); err != nil {
			t.Error(err)
		}
	})
	st := r.i.Stats()
	if st.ErrorFallback != 1 {
		t.Fatalf("fault fallback = %+v", st)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("fallback copy incomplete")
	}
}

func TestCustomThreshold(t *testing.T) {
	r := newRig(t)
	r.i.MinSize = 1 << 20
	buf := r.as.Alloc(512<<10, mem.OnNode(r.node))
	dst := r.as.Alloc(512<<10, mem.OnNode(r.node))
	r.run(t, func(p *sim.Proc) {
		if err := r.i.Memcpy(p, dst.Addr(0), buf.Addr(0), 512<<10); err != nil {
			t.Error(err)
		}
	})
	if st := r.i.Stats(); st.Offloaded != 0 || st.SmallFallback != 1 {
		t.Fatalf("custom threshold ignored: %+v", st)
	}
}
